// Package codegen lowers an optimised (and register-allocated) IR module to
// a binary image: blocks placed at concrete addresses following each
// function's layout order, with terminators materialised as branch/jump
// instructions and alignment padding inserted where the alignment passes
// requested it.
//
// The image is what the trace generator walks; instruction addresses drive
// the instruction-cache model, so code size, layout and padding all have
// real microarchitectural consequences.
package codegen

import (
	"fmt"

	"portcc/internal/ir"
	"portcc/internal/isa"
)

// CodeBase is the address of the first function; data streams live far
// above it (see internal/trace).
const CodeBase uint32 = 0x8000

// Program is the binary image of a module.
type Program struct {
	Module *ir.Module
	Funcs  []*FuncImage
	// TotalBytes is the overall code size including padding.
	TotalBytes int
	// PadBytes is the portion of TotalBytes that is alignment padding.
	PadBytes int

	// Dense cursor-index spaces, assigned at image-build time so the
	// trace generator's per-event state lookups are flat slice indexing
	// instead of map probes (see internal/trace):
	//
	// ByFuncID maps IR function ID to its image (call-target lookup).
	ByFuncID []*FuncImage
	// NumStreams counts the distinct address streams referenced by the
	// image's memory instructions; BlockImage.StreamSlot indexes them.
	NumStreams int
	// NumLatchSlots counts counted-loop latch branches (one trip counter
	// each); BlockImage.LatchSlot indexes them.
	NumLatchSlots int
	// NumSiteSlots counts distinct probabilistic branch sites that keep
	// a per-execution counter; BlockImage.SiteSlot indexes them. Blocks
	// duplicated from one source site (inlining, unrolling) share a slot,
	// exactly as they shared a counter key.
	NumSiteSlots int
}

// FuncImage is a placed function.
type FuncImage struct {
	ID     int
	Name   string
	Addr   uint32
	Bytes  int
	Blocks []*BlockImage
	// ByID maps original IR block ID to its image.
	ByID []*BlockImage
}

// BlockImage is a placed basic block: the body instructions followed by any
// materialised control instructions.
type BlockImage struct {
	ID   int    // original IR block ID
	Pos  int    // layout position within FuncImage.Blocks
	Addr uint32 // address of the first instruction (after padding)
	Pad  int    // alignment padding bytes preceding the block
	// Insns is the body; control instructions are separate so the trace
	// generator can locate them.
	Insns []ir.Insn
	// Branch materialisation:
	Term ir.Term
	// BranchAddr is the address of the conditional branch instruction
	// (valid when Term.Kind == TermBranch).
	BranchAddr uint32
	// JumpAddr is the address of the trailing unconditional jump or ret,
	// 0 if the block falls through in layout.
	JumpAddr uint32
	// BranchFallsTo holds the block ID reached by *not* redirecting at the
	// branch: the layout successor. When the layout placed the taken
	// target next, the branch is inverted and Taken/Fall roles swap at
	// trace time.
	Inverted bool
	// HasJump reports whether a trailing jump was materialised.
	HasJump bool
	// IsRet reports whether the block ends the function.
	IsRet bool
	// Bytes is the total size of the block including control insns,
	// excluding padding.
	Bytes int

	// Trace-generator cursor slots (see Program): LatchSlot is the dense
	// trip-counter index of a counted-latch branch, SiteSlot the dense
	// outcome-counter index of a probabilistic branch site; -1 when the
	// terminator keeps no such counter. StreamSlot parallels Insns with
	// the dense address-stream index of each memory instruction (-1 for
	// non-memory instructions and deterministic frame-slot accesses).
	LatchSlot  int32
	SiteSlot   int32
	StreamSlot []int32
}

// End returns the address just past the block's last instruction.
func (b *BlockImage) End() uint32 { return b.Addr + uint32(b.Bytes) }

// slotAlloc hands out the image's dense cursor indices in first-appearance
// order - a pure function of the placed instruction stream, so equal
// images (equal fingerprints) always carry equal slot assignments.
type slotAlloc struct {
	streams map[int32]int32
	sites   map[int32]int32
	latches int32
}

func (a *slotAlloc) stream(id int32) int32 {
	if s, ok := a.streams[id]; ok {
		return s
	}
	s := int32(len(a.streams))
	a.streams[id] = s
	return s
}

func (a *slotAlloc) site(id int32) int32 {
	if s, ok := a.sites[id]; ok {
		return s
	}
	s := int32(len(a.sites))
	a.sites[id] = s
	return s
}

// Lower places every function of the module and returns the image.
// Functions are placed in module order starting at CodeBase; blocks follow
// each function's Layout (natural order when nil).
func Lower(m *ir.Module) (*Program, error) {
	p := &Program{Module: m}
	alloc := &slotAlloc{streams: map[int32]int32{}, sites: map[int32]int32{}}
	addr := CodeBase
	totalPad := 0
	maxID := -1
	for _, f := range m.Funcs {
		if f.Align > 0 {
			pad := padTo(addr, uint32(f.Align))
			addr += pad
			totalPad += int(pad)
		}
		fi, err := lowerFunc(f, addr, alloc)
		if err != nil {
			return nil, err
		}
		for _, bi := range fi.Blocks {
			totalPad += bi.Pad
		}
		p.Funcs = append(p.Funcs, fi)
		if fi.ID > maxID {
			maxID = fi.ID
		}
		addr += uint32(fi.Bytes)
	}
	p.TotalBytes = int(addr - CodeBase)
	p.PadBytes = totalPad
	p.ByFuncID = make([]*FuncImage, maxID+1)
	for _, fi := range p.Funcs {
		p.ByFuncID[fi.ID] = fi
	}
	p.NumStreams = len(alloc.streams)
	p.NumLatchSlots = int(alloc.latches)
	p.NumSiteSlots = len(alloc.sites)
	return p, nil
}

func padTo(addr, align uint32) uint32 {
	if align == 0 {
		return 0
	}
	rem := addr & (align - 1)
	if rem == 0 {
		return 0
	}
	return align - rem
}

func lowerFunc(f *ir.Func, base uint32, alloc *slotAlloc) (*FuncImage, error) {
	layout := f.Layout
	if layout == nil {
		layout = make([]int, len(f.Blocks))
		for i := range layout {
			layout[i] = i
		}
	}
	if len(layout) != len(f.Blocks) {
		return nil, fmt.Errorf("codegen: func %s: layout has %d entries for %d blocks", f.Name, len(layout), len(f.Blocks))
	}
	if layout[0] != 0 {
		return nil, fmt.Errorf("codegen: func %s: layout must start with the entry block", f.Name)
	}
	seen := make([]bool, len(f.Blocks))
	for _, id := range layout {
		if id < 0 || id >= len(f.Blocks) || seen[id] {
			return nil, fmt.Errorf("codegen: func %s: layout is not a permutation", f.Name)
		}
		seen[id] = true
	}

	fi := &FuncImage{ID: f.ID, Name: f.Name, Addr: base}
	fi.ByID = make([]*BlockImage, len(f.Blocks))
	addr := base
	for pos, id := range layout {
		b := f.Blocks[id]
		pad := padTo(addr, uint32(b.Align))
		addr += pad
		bi := &BlockImage{ID: id, Pos: pos, Addr: addr, Pad: int(pad), Insns: b.Insns, Term: b.Term,
			LatchSlot: -1, SiteSlot: -1}
		if len(b.Insns) > 0 {
			bi.StreamSlot = make([]int32, len(b.Insns))
			for i := range b.Insns {
				in := &b.Insns[i]
				bi.StreamSlot[i] = -1
				if in.Op.IsMem() &&
					!in.HasFlag(ir.FlagSpill) && !in.HasFlag(ir.FlagSave) && !in.HasFlag(ir.FlagPrologue) {
					bi.StreamSlot[i] = alloc.stream(in.Mem.Stream)
				}
			}
		}
		if b.Term.Kind == ir.TermBranch {
			switch t := b.Term; {
			case t.Trip > 0:
				bi.LatchSlot = alloc.latches
				alloc.latches++
			case t.Prob > 0 && t.Prob < 1 && t.InvariantIn <= 0:
				bi.SiteSlot = alloc.site(t.Site)
			}
		}
		next := -1
		if pos+1 < len(layout) {
			next = layout[pos+1]
		}
		bytes := len(b.Insns) * isa.InsnBytes
		switch b.Term.Kind {
		case ir.TermRet:
			bi.JumpAddr = addr + uint32(bytes)
			bi.IsRet = true
			bytes += isa.InsnBytes
		case ir.TermFall:
			if b.Term.Fall != next {
				bi.JumpAddr = addr + uint32(bytes)
				bi.HasJump = true
				bytes += isa.InsnBytes
			}
		case ir.TermJump:
			if b.Term.Taken != next {
				bi.JumpAddr = addr + uint32(bytes)
				bi.HasJump = true
				bytes += isa.InsnBytes
			}
		case ir.TermBranch:
			bi.BranchAddr = addr + uint32(bytes)
			bytes += isa.InsnBytes
			switch {
			case b.Term.Fall == next:
				// branch taken-target, fall through: nothing extra.
			case b.Term.Taken == next:
				// Invert the condition so the old taken target becomes
				// the fall-through.
				bi.Inverted = true
			default:
				// Branch plus unconditional jump to the fall target.
				bi.JumpAddr = addr + uint32(bytes)
				bi.HasJump = true
				bytes += isa.InsnBytes
			}
		}
		bi.Bytes = bytes
		addr += uint32(bytes)
		fi.Blocks = append(fi.Blocks, bi)
		fi.ByID[id] = bi
	}
	fi.Bytes = int(addr - base)
	return fi, nil
}

// FuncOf returns the function image with the given IR function index -
// a flat lookup, since the trace generator resolves every dynamic call
// through it.
func (p *Program) FuncOf(id int) *FuncImage {
	if id >= 0 && id < len(p.ByFuncID) {
		return p.ByFuncID[id]
	}
	return nil
}

// Entry returns the image of the module's entry function.
func (p *Program) Entry() *FuncImage { return p.FuncOf(p.Module.Entry) }
