package codegen

import (
	"testing"

	"portcc/internal/ir"
	"portcc/internal/isa"
)

func twoBlockFunc() *ir.Func {
	f := &ir.Func{Name: "f", ID: 0, NextReg: 3}
	f.Blocks = []*ir.Block{
		{ID: 0, Insns: []ir.Insn{{Op: isa.OpALU, Def: 1, Imm: 1}},
			Term: ir.Term{Kind: ir.TermFall, Fall: 1}},
		{ID: 1, Insns: []ir.Insn{{Op: isa.OpALU, Def: 2, Imm: 2}},
			Term: ir.Term{Kind: ir.TermRet}},
	}
	return f
}

func TestFallthroughElision(t *testing.T) {
	m := &ir.Module{Name: "m", Funcs: []*ir.Func{twoBlockFunc()}}
	p, err := Lower(m)
	if err != nil {
		t.Fatal(err)
	}
	b0 := p.Funcs[0].Blocks[0]
	if b0.HasJump {
		t.Error("fall-through to the next block must not materialise a jump")
	}
	// 1 insn + 1 insn + ret = 12 bytes.
	if p.TotalBytes != 3*isa.InsnBytes {
		t.Errorf("code size %d, want %d", p.TotalBytes, 3*isa.InsnBytes)
	}
}

func TestLayoutForcesJump(t *testing.T) {
	f := twoBlockFunc()
	f.Blocks = append(f.Blocks, &ir.Block{ID: 2, Term: ir.Term{Kind: ir.TermRet}})
	f.Blocks[0].Term = ir.Term{Kind: ir.TermFall, Fall: 1}
	f.Layout = []int{0, 2, 1} // block 1 no longer adjacent
	m := &ir.Module{Name: "m", Funcs: []*ir.Func{f}}
	p, err := Lower(m)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Funcs[0].ByID[0].HasJump {
		t.Error("displaced fall-through must become a jump")
	}
}

func TestBranchInversion(t *testing.T) {
	f := &ir.Func{Name: "f", ID: 0, NextReg: 2}
	f.Blocks = []*ir.Block{
		{ID: 0, Term: ir.Term{Kind: ir.TermBranch, Taken: 1, Fall: 2, Prob: 0.9}},
		{ID: 1, Term: ir.Term{Kind: ir.TermRet}},
		{ID: 2, Term: ir.Term{Kind: ir.TermRet}},
	}
	// Layout putting the taken target next: the branch must invert.
	f.Layout = []int{0, 1, 2}
	m := &ir.Module{Name: "m", Funcs: []*ir.Func{f}}
	p, err := Lower(m)
	if err != nil {
		t.Fatal(err)
	}
	bi := p.Funcs[0].ByID[0]
	if !bi.Inverted {
		t.Error("branch with taken target adjacent must be inverted")
	}
	if bi.HasJump {
		t.Error("inverted branch needs no extra jump")
	}
	// Neither target adjacent: branch + jump.
	f2 := &ir.Func{Name: "g", ID: 0, NextReg: 2}
	f2.Blocks = []*ir.Block{
		{ID: 0, Term: ir.Term{Kind: ir.TermBranch, Taken: 2, Fall: 1, Prob: 0.5}},
		{ID: 1, Term: ir.Term{Kind: ir.TermRet}},
		{ID: 2, Term: ir.Term{Kind: ir.TermRet}},
		{ID: 3, Term: ir.Term{Kind: ir.TermRet}},
	}
	f2.Layout = []int{0, 3, 1, 2} // both branch targets displaced
	m2 := &ir.Module{Name: "m2", Funcs: []*ir.Func{f2}}
	p2, err := Lower(m2)
	if err != nil {
		t.Fatal(err)
	}
	if !p2.Funcs[0].ByID[0].HasJump {
		t.Error("branch with both targets displaced needs a jump")
	}
}

func TestAlignmentPadding(t *testing.T) {
	f := twoBlockFunc()
	f.Blocks[1].Align = 16
	m := &ir.Module{Name: "m", Funcs: []*ir.Func{f}}
	p, err := Lower(m)
	if err != nil {
		t.Fatal(err)
	}
	b1 := p.Funcs[0].ByID[1]
	if b1.Addr%16 != 0 {
		t.Errorf("aligned block at %#x, not 16-byte aligned", b1.Addr)
	}
	if p.PadBytes == 0 {
		t.Error("padding not accounted")
	}
}

func TestLayoutValidation(t *testing.T) {
	f := twoBlockFunc()
	f.Layout = []int{1, 0} // entry not first
	m := &ir.Module{Name: "m", Funcs: []*ir.Func{f}}
	if _, err := Lower(m); err == nil {
		t.Error("layout not starting at entry accepted")
	}
	f.Layout = []int{0, 0} // not a permutation
	if _, err := Lower(m); err == nil {
		t.Error("non-permutation layout accepted")
	}
	f.Layout = []int{0} // missing block
	if _, err := Lower(m); err == nil {
		t.Error("short layout accepted")
	}
}

func TestAddressesMonotonic(t *testing.T) {
	f := twoBlockFunc()
	m := &ir.Module{Name: "m", Funcs: []*ir.Func{f, twoBlockFunc()}}
	m.Funcs[1].ID = 1
	m.Funcs[1].Name = "g"
	p, err := Lower(m)
	if err != nil {
		t.Fatal(err)
	}
	last := uint32(0)
	for _, fi := range p.Funcs {
		for _, bi := range fi.Blocks {
			if bi.Addr < last {
				t.Fatal("block addresses not monotonically increasing")
			}
			last = bi.End()
		}
	}
	if p.Funcs[0].Addr != CodeBase {
		t.Errorf("first function at %#x, want CodeBase %#x", p.Funcs[0].Addr, CodeBase)
	}
}
