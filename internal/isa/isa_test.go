package isa

import "testing"

func TestOpClassification(t *testing.T) {
	cases := []struct {
		op                     Op
		mem, ctl, alu, mac, sh bool
	}{
		{OpNop, false, false, false, false, false},
		{OpALU, false, false, true, false, false},
		{OpMul, false, false, false, true, false},
		{OpMac, false, false, false, true, false},
		{OpShift, false, false, false, false, true},
		{OpLoad, true, false, false, false, false},
		{OpStore, true, false, false, false, false},
		{OpBranch, false, true, false, false, false},
		{OpJump, false, true, false, false, false},
		{OpCall, false, true, false, false, false},
		{OpRet, false, true, false, false, false},
		{OpMove, false, false, true, false, false},
	}
	for _, c := range cases {
		if got := c.op.IsMem(); got != c.mem {
			t.Errorf("%v.IsMem() = %v, want %v", c.op, got, c.mem)
		}
		if got := c.op.IsControl(); got != c.ctl {
			t.Errorf("%v.IsControl() = %v, want %v", c.op, got, c.ctl)
		}
		if got := c.op.UsesALU(); got != c.alu {
			t.Errorf("%v.UsesALU() = %v, want %v", c.op, got, c.alu)
		}
		if got := c.op.UsesMAC(); got != c.mac {
			t.Errorf("%v.UsesMAC() = %v, want %v", c.op, got, c.mac)
		}
		if got := c.op.UsesShifter(); got != c.sh {
			t.Errorf("%v.UsesShifter() = %v, want %v", c.op, got, c.sh)
		}
	}
}

func TestLatencies(t *testing.T) {
	if OpMul.Latency() <= OpALU.Latency() {
		t.Error("multiply should be slower than ALU")
	}
	if OpMac.Latency() < OpMul.Latency() {
		t.Error("MAC should not be faster than multiply")
	}
	if OpLoad.Latency() != 0 {
		t.Error("load latency is supplied by the cache model, should be 0 here")
	}
}

func TestOpStrings(t *testing.T) {
	seen := map[string]bool{}
	for op := OpNop; int(op) < NumOps; op++ {
		s := op.String()
		if s == "" || seen[s] {
			t.Errorf("op %d has empty or duplicate name %q", op, s)
		}
		seen[s] = true
	}
	if Op(200).String() == "" {
		t.Error("out-of-range op should still format")
	}
}

func TestMachineConstants(t *testing.T) {
	if AllocatableRegs >= NumRegs {
		t.Error("some registers must be reserved (sp/lr/pc)")
	}
	if CallerSavedRegs >= AllocatableRegs {
		t.Error("caller-saved must be a subset of allocatable")
	}
	if InsnBytes != 4 {
		t.Error("fixed 4-byte instructions expected")
	}
}
