// Package isa defines the target instruction set of the portable compiler:
// a small ARM/XScale-class ISA with the operation classes the Xtrem-style
// simulator distinguishes (ALU, MAC, shifter, memory, control).
//
// The ISA is deliberately minimal: the simulator charges cycles per
// operation class, and the performance counters of the paper (Table 1)
// report usage per class, so only the class structure matters.
package isa

import "fmt"

// Op is an operation class. Every IR instruction lowers to exactly one Op.
type Op uint8

// Operation classes. The grouping follows the XScale functional units:
// the ALU executes arithmetic/logic, the MAC unit multiplies and
// multiply-accumulates, the shifter handles shift/rotate, and the load/store
// unit handles memory traffic.
const (
	// OpNop is a no-op, used for alignment padding.
	OpNop Op = iota
	// OpALU is an add/sub/logic/compare instruction (1-cycle).
	OpALU
	// OpMul is a multiply executed on the MAC unit.
	OpMul
	// OpMac is a multiply-accumulate executed on the MAC unit.
	OpMac
	// OpShift is a shift/rotate executed on the shifter.
	OpShift
	// OpLoad reads memory through the data cache.
	OpLoad
	// OpStore writes memory through the data cache.
	OpStore
	// OpBranch is a conditional branch (uses the BTB/predictor).
	OpBranch
	// OpJump is an unconditional direct jump.
	OpJump
	// OpCall is a direct function call.
	OpCall
	// OpRet is a function return.
	OpRet
	// OpMove is a register-to-register copy (ALU-class, coalescible).
	OpMove

	// NumOps is the number of operation classes.
	NumOps = int(OpMove) + 1
)

var opNames = [NumOps]string{
	"nop", "alu", "mul", "mac", "shift", "load", "store",
	"branch", "jump", "call", "ret", "move",
}

// String returns the lower-case mnemonic for the operation class.
func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// IsMem reports whether the operation accesses the data cache.
func (o Op) IsMem() bool { return o == OpLoad || o == OpStore }

// IsControl reports whether the operation redirects fetch.
func (o Op) IsControl() bool {
	switch o {
	case OpBranch, OpJump, OpCall, OpRet:
		return true
	}
	return false
}

// UsesALU reports whether the operation occupies the ALU.
func (o Op) UsesALU() bool { return o == OpALU || o == OpMove }

// UsesMAC reports whether the operation occupies the MAC unit.
func (o Op) UsesMAC() bool { return o == OpMul || o == OpMac }

// UsesShifter reports whether the operation occupies the shifter.
func (o Op) UsesShifter() bool { return o == OpShift }

// Fixed machine properties of the XScale-class target.
const (
	// InsnBytes is the size of every encoded instruction.
	InsnBytes = 4

	// NumRegs is the number of architectural general-purpose registers.
	NumRegs = 16

	// AllocatableRegs is the number of registers available to the
	// allocator (r13-r15 are sp/lr/pc, r12 is the scratch register).
	AllocatableRegs = 12

	// CallerSavedRegs is the number of caller-saved registers within the
	// allocatable set (ARM AAPCS r0-r3 plus ip).
	CallerSavedRegs = 5
)

// Latency returns the result latency in cycles of the operation class on an
// XScale-class core: the number of cycles before a dependent instruction can
// issue. Loads take their cache hit latency instead (the simulator adds it).
func (o Op) Latency() int {
	switch o {
	case OpMul:
		return 3
	case OpMac:
		return 4
	case OpLoad:
		return 0 // supplied by the cache model
	default:
		return 1
	}
}
