// Command trainer generates the paper's training dataset (Section 3.2):
// for every sampled (program, microarchitecture, optimisation setting)
// triple, the speedup over -O3 and the -O3 performance counters. The
// result is written as a versioned gob file for cmd/portcc and cmd/expgen.
// Generation streams through the Session exploration engine: progress is
// printed per completed grid cell and Ctrl-C cancels cleanly.
//
// With -shards the grid's work cells are shipped to portccd worker
// daemons over gob/TCP instead of the local pool; the written dataset is
// bit-identical either way, including when a shard dies mid-run (its
// cells requeue onto the survivors while the coordinator redials it
// with backoff - tune with -shard-retries and -shard-backoff).
//
// With -model-out the model is additionally trained on the fresh
// dataset and written as a versioned model artifact - the file
// cmd/portcc -model, cmd/expgen -model and cmd/portccs serve from
// without retraining. The artifact embeds the dataset fingerprint and
// the profiling parameters, so deployments reproduce the training
// feature distribution.
//
// With -store the generation is resumable: replay results are committed
// to a persistent content-addressed store as they are produced, and a
// rerun after any interruption (kill -9 included) answers the already-
// computed cells from disk, writing a byte-identical dataset. Corrupt
// store entries are quarantined and recomputed; a full disk degrades to
// cache misses.
//
// Usage:
//
//	trainer -out dataset.gob [-model-out model.gob] [-scale small]
//	        [-archs N] [-opts N] [-extended] [-workers N] [-sweep-workers N]
//	        [-store dir] [-store-budget bytes]
//	        [-shards host:port,host:port]
//	        [-shard-retries N] [-shard-backoff dur]
//	        [-cpuprofile file] [-memprofile file]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"portcc"
	"portcc/internal/cliutil"
	"portcc/internal/experiments"
)

func main() {
	var cf cliutil.Flags
	cf.RegisterScale("small")
	cf.RegisterWorkers()
	cf.RegisterSweepWorkers()
	cf.RegisterShards()
	cf.RegisterShardRetry()
	cf.RegisterStore()
	cf.RegisterProfile()
	out := flag.String("out", "dataset.gob", "output file")
	modelOut := flag.String("model-out", "", "also train the model and write it as a versioned artifact")
	archs := flag.Int("archs", 0, "override architecture sample count")
	opts := flag.Int("opts", 0, "override optimisation sample count")
	extended := flag.Bool("extended", false, "use the Section 7 extended space")
	naive := flag.Bool("naive", false, "disable the batched compile engine (per-cell equivalence baseline; output is bit-identical)")
	ctx, stop := cliutil.Init("trainer")
	defer stop()
	stopProfiles, err := cf.StartProfiles()
	if err != nil {
		log.Fatal(err)
	}
	defer stopProfiles()

	scale, ok := experiments.ScaleByName(cf.Scale)
	if !ok {
		log.Fatalf("unknown scale %q", cf.Scale)
	}
	if *archs > 0 {
		scale.NumArchs = *archs
	}
	if *opts > 0 {
		scale.NumOpts = *opts
	}

	shards := cf.Shards()
	rstore, err := cf.OpenStore()
	if err != nil {
		log.Fatal(err)
	}
	report, finishProgress := cliutil.ProgressPrinter(os.Stderr, len(shards))
	sessionOpts := []portcc.Option{
		portcc.WithScale(scale),
		portcc.WithWorkers(cf.Workers),
		portcc.WithSweepWorkers(cf.SweepWorkers),
		portcc.WithShards(shards...),
		portcc.WithShardRetry(cf.ShardRetry()),
		portcc.WithProgress(func(p portcc.Progress) { report(p.Done, p.Total) }),
	}
	if *naive {
		sessionOpts = append(sessionOpts, portcc.WithNaiveCompile())
	}
	if rstore != nil {
		sessionOpts = append(sessionOpts, portcc.WithResultStore(rstore))
		defer rstore.Close()
	}
	session := portcc.NewSession(sessionOpts...)

	start := time.Now()
	gc := scale.GenConfig(*extended)
	fmt.Printf("generating %s dataset: %d programs x %d archs x %d settings (extended=%v)\n",
		scale.Name, len(gc.Programs), scale.NumArchs, scale.NumOpts, *extended)
	ds, err := session.GenerateDataset(ctx, *extended)
	finishProgress()
	if err != nil {
		log.Fatal(err)
	}
	if err := ds.Save(*out); err != nil {
		log.Fatal(err)
	}
	nP, nA, nO := ds.Dims()
	fmt.Printf("wrote %s: %d pairs (%d x %d), %d settings each, in %s\n",
		*out, nP*nA, nP, nA, nO, time.Since(start).Round(time.Second))
	if line := cliutil.StoreStats(rstore); line != "" {
		fmt.Println(line)
	}

	if *modelOut != "" {
		model, err := portcc.TrainModel(ds)
		if err != nil {
			log.Fatal(err)
		}
		info, err := portcc.SaveModel(*modelOut, model, ds)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s: %d pair models, dataset %.12s...\n",
			*modelOut, info.Pairs, info.DatasetSHA256)
	}
}
