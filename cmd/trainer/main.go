// Command trainer generates the paper's training dataset (Section 3.2):
// for every sampled (program, microarchitecture, optimisation setting)
// triple, the speedup over -O3 and the -O3 performance counters. The
// result is written as a versioned gob file for cmd/portcc and cmd/expgen.
// Generation streams through the Session exploration engine: progress is
// printed per completed grid cell and Ctrl-C cancels cleanly.
//
// Usage:
//
//	trainer -out dataset.gob [-scale small] [-archs N] [-opts N] [-extended] [-workers N]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"portcc"
	"portcc/internal/cliutil"
	"portcc/internal/experiments"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("trainer: ")
	out := flag.String("out", "dataset.gob", "output file")
	scaleName := flag.String("scale", "small", "sampling scale: tiny, small, medium or paper")
	archs := flag.Int("archs", 0, "override architecture sample count")
	opts := flag.Int("opts", 0, "override optimisation sample count")
	extended := flag.Bool("extended", false, "use the Section 7 extended space")
	workers := flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
	flag.Parse()

	ctx, stop := cliutil.SignalContext()
	defer stop()

	scale, ok := map[string]portcc.Scale{
		"tiny": experiments.Tiny, "small": experiments.Small,
		"medium": experiments.Medium, "paper": experiments.Paper,
	}[*scaleName]
	if !ok {
		log.Fatalf("unknown scale %q", *scaleName)
	}
	if *archs > 0 {
		scale.NumArchs = *archs
	}
	if *opts > 0 {
		scale.NumOpts = *opts
	}

	report, finishProgress := cliutil.ProgressPrinter(os.Stderr)
	session := portcc.NewSession(
		portcc.WithScale(scale),
		portcc.WithWorkers(*workers),
		portcc.WithProgress(func(p portcc.Progress) { report(p.Done, p.Total) }),
	)

	start := time.Now()
	gc := scale.GenConfig(*extended)
	fmt.Printf("generating %s dataset: %d programs x %d archs x %d settings (extended=%v)\n",
		scale.Name, len(gc.Programs), scale.NumArchs, scale.NumOpts, *extended)
	ds, err := session.GenerateDataset(ctx, *extended)
	finishProgress()
	if err != nil {
		log.Fatal(err)
	}
	if err := ds.Save(*out); err != nil {
		log.Fatal(err)
	}
	nP, nA, nO := ds.Dims()
	fmt.Printf("wrote %s: %d pairs (%d x %d), %d settings each, in %s\n",
		*out, nP*nA, nP, nA, nO, time.Since(start).Round(time.Second))
}
