// Command trainer generates the paper's training dataset (Section 3.2):
// for every sampled (program, microarchitecture, optimisation setting)
// triple, the speedup over -O3 and the -O3 performance counters. The
// result is written with gob encoding for cmd/portcc and cmd/expgen.
//
// Usage:
//
//	trainer -out dataset.gob [-scale small] [-archs N] [-opts N] [-extended]
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"portcc/internal/experiments"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("trainer: ")
	out := flag.String("out", "dataset.gob", "output file")
	scaleName := flag.String("scale", "small", "sampling scale: tiny, small, medium or paper")
	archs := flag.Int("archs", 0, "override architecture sample count")
	opts := flag.Int("opts", 0, "override optimisation sample count")
	extended := flag.Bool("extended", false, "use the Section 7 extended space")
	flag.Parse()

	scale, ok := map[string]experiments.Scale{
		"tiny": experiments.Tiny, "small": experiments.Small,
		"medium": experiments.Medium, "paper": experiments.Paper,
	}[*scaleName]
	if !ok {
		log.Fatalf("unknown scale %q", *scaleName)
	}
	if *archs > 0 {
		scale.NumArchs = *archs
	}
	if *opts > 0 {
		scale.NumOpts = *opts
	}

	start := time.Now()
	gc := scale.GenConfig(*extended)
	fmt.Printf("generating %s dataset: %d programs x %d archs x %d settings (extended=%v)\n",
		scale.Name, len(gc.Programs), scale.NumArchs, scale.NumOpts, *extended)
	ds, err := scale.Dataset(*extended)
	if err != nil {
		log.Fatal(err)
	}
	if err := ds.Save(*out); err != nil {
		log.Fatal(err)
	}
	nP, nA, nO := ds.Dims()
	fmt.Printf("wrote %s: %d pairs (%d x %d), %d settings each, in %s\n",
		*out, nP*nA, nP, nA, nO, time.Since(start).Round(time.Second))
}
