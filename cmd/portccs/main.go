// Command portccs is the prediction server: an always-on HTTP service
// that answers optimisation queries from a pre-trained model artifact
// (trainer -model-out) - the paper's Figure 2 deployment path exposed
// to a fleet instead of one CLI invocation.
//
// Usage:
//
//	portccs -model model.gob [-addr :7078] [-cache N]
//	        [-max-inflight N] [-max-queue N] [-reload dur]
//	        [-store dir] [-store-budget bytes] [-store-remote host:port]
//
// Endpoints:
//
//	POST /v1/predict  {"program": "...", "arch": {...}} or
//	                  {"features": [19 floats]} -> predicted-best
//	                  setting plus the per-dimension mixture
//	GET  /healthz     model and dataset fingerprints, pair count
//	GET  /metrics     Prometheus text-format counters and histograms
//
// Profiling parameters come from the artifact, so served feature
// vectors match the model's training distribution; repeat
// (program, uarch) queries hit an LRU feature cache and skip the
// profiling simulation entirely. With -store the profiling replays
// also hit a persistent content-addressed result store, so a restarted
// server warms from disk instead of re-simulating its fleet's programs;
// with -store-remote the store tiers behind the fleet's shared store
// service (portccsd), so replays any worker already ran are never
// re-simulated here (store health is visible as portccs_store_* and
// portccs_store_remote_* counters on /metrics).
// When the artifact file changes on disk it is hot-reloaded
// (content-fingerprint checked); excess load beyond the admission
// bounds is shed with HTTP 429 + Retry-After.
//
// The first SIGTERM (or SIGINT) drains gracefully: the listener stops
// accepting, in-flight predictions finish and their responses are
// written, then the process exits. A second signal hard-stops.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"time"

	"portcc/internal/cliutil"
	"portcc/internal/serve"
)

func main() {
	var cf cliutil.Flags
	cf.RegisterModel("model artifact to serve (required; from trainer -model-out)")
	cf.RegisterAddr(":7078")
	cf.RegisterStore()
	cacheEntries := flag.Int("cache", 0, "feature-cache capacity in (program, uarch) entries (0 = default 1024)")
	maxInFlight := flag.Int("max-inflight", 0, "max concurrently executing predictions (0 = GOMAXPROCS)")
	maxQueue := flag.Int("max-queue", 0, "max predictions queued for a slot before shedding 429s (0 = 4x max-inflight)")
	reload := flag.Duration("reload", time.Second, "artifact staleness check interval")
	ctx, stop := cliutil.Init("portccs")
	defer stop()

	if cf.Model == "" {
		log.Fatal("-model is required (train one with: trainer -scale tiny -model-out model.gob)")
	}
	rstore, err := cf.OpenStore()
	if err != nil {
		log.Fatal(err)
	}
	if rstore != nil {
		defer rstore.Close()
		switch {
		case cf.Store != "" && cf.StoreRemote != "":
			log.Printf("result store at %s, tiered behind service %s", cf.Store, cf.StoreRemote)
		case cf.StoreRemote != "":
			log.Printf("result store: fleet service %s (no local tier)", cf.StoreRemote)
		default:
			log.Printf("result store at %s", cf.Store)
		}
	}
	srv, err := serve.New(serve.Config{
		ModelPath:    cf.Model,
		CacheEntries: *cacheEntries,
		MaxInFlight:  *maxInFlight,
		MaxQueue:     *maxQueue,
		ReloadEvery:  *reload,
		Store:        rstore,
		Logf:         log.Printf,
	})
	if err != nil {
		log.Fatal(err)
	}

	hs := &http.Server{Addr: cf.Addr, Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	log.Printf("serving predictions on %s from %s", cf.Addr, cf.Model)

	select {
	case err := <-errc:
		log.Fatal(err)
	case <-ctx.Done():
	}
	// First signal: drain. cliutil.SignalContext has already restored the
	// default handler, so a second SIGTERM/SIGINT hard-kills instead of
	// being swallowed while in-flight predictions finish.
	log.Print("draining: finishing in-flight predictions (signal again to hard-stop)")
	shutCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := hs.Shutdown(shutCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Fatal(err)
	}
	log.Print("drained")
}
