// Command benchgen measures dataset generation throughput on this
// machine: it runs dataset.Generate through the naive per-cell path and
// through the prefix-memoised batched path at the same scale, checks the
// two datasets are byte-identical, and writes the timings plus the
// batched path's work counters as JSON (BENCH_generate.json by default).
// CI runs it at tiny scale as a regression smoke; the committed
// BENCH_generate.json is produced at -scale small, the compile+trace-
// dominated regime the batched engine targets.
//
// Alongside the generation timings, benchgen measures the batched
// replay engine itself on the Section 7 extended space (width 1-2,
// where the dual-issue closed forms apply): one fixed gs trace replayed
// over -ext-archs sampled extended configurations, batched at one
// sweep worker versus a per-configuration cpu.Simulate loop, reported
// as Mevc/s (millions of event x config per second) and as the
// extended_speedup ratio. With -multicore N the batched replay is
// repeated at GOMAXPROCS=N with the sweep fanned over N workers, the
// gomaxprocs>1 record of the same engine.
//
// A third generation measurement exercises the persistent result store:
// one batched generation against an empty store directory (cold - every
// replay computed and committed to disk), then -runs generations against
// the populated store (warm - every replay answered from disk). All
// datasets are checked byte-identical to the storeless reference before
// any timing is recorded; the warm/cold ratio is the committed evidence
// that a resumed run is measurably faster than recomputing. With -store
// the store lives in that directory (and persists); by default it is a
// temporary directory removed afterwards.
//
// Usage:
//
//	benchgen [-scale small] [-runs 3] [-out BENCH_generate.json]
//	         [-ext-archs 200] [-multicore N [-multicore-comment ...]]
//	         [-store dir] [-store-budget bytes]
//	         [-check BENCH_generate.json [-check-slack 0.10]
//	          [-check-slack-extended 0.40] [-check-slack-multicore 0.35]
//	          [-check-slack-store 0.50]]
//	         [-tiny-speedup X] [-baseline-seconds S [-baseline-comment ...]]
//	         [-cpuprofile file] [-memprofile file]
//
// With -check, the measured naive/batched speedup is gated against a
// committed benchgen JSON (its own speedup at the same scale, or its
// tiny_speedup reference when running at tiny scale) and the process
// fails on a regression beyond the slack - the CI bench job's
// machine-portable regression gate. The extended_speedup ratio is gated
// the same way at any scale (the replay workload is fixed, not scaled),
// and the multicore ratio is gated with its own wider slack when the
// run and the reference used the same -multicore value: wall-clock
// ratios across GOMAXPROCS settings are scheduling-sensitive, and on a
// single-core box the honest ratio is ~1.0 however many workers spin.
package main

import (
	"bytes"
	"context"
	"encoding/gob"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"runtime"
	"sort"
	"time"

	"portcc/internal/cliutil"
	"portcc/internal/core"
	"portcc/internal/cpu"
	"portcc/internal/dataset"
	"portcc/internal/experiments"
	"portcc/internal/opt"
	"portcc/internal/prog"
	"portcc/internal/store"
	"portcc/internal/trace"
	"portcc/internal/uarch"
)

// result is the JSON document benchgen emits.
type result struct {
	Scale      string  `json:"scale"`
	Programs   int     `json:"programs"`
	Archs      int     `json:"archs"`
	Opts       int     `json:"opts"`
	Runs       int     `json:"runs"`
	GoMaxProcs int     `json:"gomaxprocs"`
	GoVersion  string  `json:"go_version"`
	NaiveSec   float64 `json:"naive_seconds_median"`
	BatchedSec float64 `json:"batched_seconds_median"`
	Speedup    float64 `json:"speedup"`
	// BaselineSec optionally records an externally measured generation
	// time of a previous build (-baseline-seconds), for speedup claims
	// against a baseline that lacks the naive/batched toggle. Zero when
	// not provided.
	BaselineSec     float64 `json:"baseline_seconds_median,omitempty"`
	SpeedupVsBase   float64 `json:"speedup_vs_baseline,omitempty"`
	BaselineComment string  `json:"baseline_comment,omitempty"`
	// Work counters from one batched run, summed over all worker
	// evaluators: the pass applications executed vs the ones the prefix
	// trie avoided, the trace generations skipped for settings whose
	// binaries came out byte-identical, and the trace generations
	// actually performed with the dynamic instructions they emitted
	// (trace-generator throughput changes show up here without a
	// profiler).
	PassRuns      int64 `json:"pass_runs"`
	PassRunsSaved int64 `json:"pass_runs_saved"`
	TraceReuses   int64 `json:"trace_reuses"`
	TraceGens     int64 `json:"trace_gens"`
	TraceEvents   int64 `json:"trace_events"`
	Identical     bool  `json:"datasets_byte_identical"`
	// TinySpeedup optionally records this tool's speedup measured at
	// -scale tiny on the same machine as the main entry (-tiny-speedup),
	// so a committed small-scale file also carries the reference the CI
	// tiny-scale smoke gates against with -check.
	TinySpeedup float64 `json:"tiny_speedup,omitempty"`
	// Extended-space replay record: one fixed gs trace (the bench_test.go
	// workload) replayed over ExtArchs sampled Section 7 configurations,
	// batched with one sweep worker vs a per-configuration cpu.Simulate
	// loop. The Mevc/s figures are machine-bound; the speedup ratio is
	// same-machine same-run and gates like the generation speedups.
	ExtArchs       int     `json:"extended_archs,omitempty"`
	ExtTraceEvents int64   `json:"extended_trace_events,omitempty"`
	ExtSeqMevcs    float64 `json:"extended_sequential_mevcs,omitempty"`
	ExtBatchMevcs  float64 `json:"extended_batched_mevcs,omitempty"`
	ExtSpeedup     float64 `json:"extended_speedup,omitempty"`
	// Multi-core record (-multicore N): the same batched extended replay
	// at GOMAXPROCS=N with the sweep fanned over N workers, and its
	// wall-clock ratio over the one-worker batched run above. The results
	// are bit-identical at every worker count; only the schedule moves.
	MCProcs   int     `json:"multicore_gomaxprocs,omitempty"`
	MCMevcs   float64 `json:"multicore_batched_mevcs,omitempty"`
	MCSpeedup float64 `json:"multicore_speedup,omitempty"`
	MCComment string  `json:"multicore_comment,omitempty"`
	// Persistent result-store record: batched generation against an
	// empty store (cold: computes and commits every replay), then
	// against the populated store (warm: answers every replay from
	// disk). The cold/warm ratio is the resume-speed claim of the store;
	// both datasets are byte-identical to the storeless run by
	// construction (checked fatally before writing). StoreEntries and
	// StoreBytes size the populated store for the measured scale.
	StoreColdSec     float64 `json:"store_cold_seconds,omitempty"`
	StoreWarmSec     float64 `json:"store_warm_seconds_median,omitempty"`
	StoreWarmSpeedup float64 `json:"store_warm_speedup,omitempty"`
	StoreEntries     int     `json:"store_entries,omitempty"`
	StoreBytes       int64   `json:"store_bytes,omitempty"`
}

// loadResult reads a previously written benchgen JSON document.
func loadResult(path string) (result, error) {
	var r result
	data, err := os.ReadFile(path)
	if err != nil {
		return r, err
	}
	err = json.Unmarshal(data, &r)
	return r, err
}

func main() {
	var cf cliutil.Flags
	cf.RegisterProfile()
	cf.RegisterStore()
	scaleName := flag.String("scale", "small", "scale to measure (tiny|small|medium|paper)")
	runs := flag.Int("runs", 3, "timed runs per path (median reported)")
	out := flag.String("out", "BENCH_generate.json", "output JSON path")
	baseline := flag.Float64("baseline-seconds", 0, "externally measured previous-build Generate seconds at this scale (recorded in the report)")
	baselineNote := flag.String("baseline-comment", "", "how the external baseline was measured")
	counters := flag.Bool("counters", true, "report batch work counters (costs one extra untimed single-worker pass over the grid)")
	tinySpeedup := flag.Float64("tiny-speedup", 0, "same-machine tiny-scale speedup to record alongside this entry (reference for -check)")
	extArchs := flag.Int("ext-archs", 200, "extended-space configurations in the replay-engine measurement (0 skips it)")
	multicore := flag.Int("multicore", 0, "repeat the batched extended replay at this GOMAXPROCS with matching sweep workers (0 skips it)")
	multicoreNote := flag.String("multicore-comment", "", "how the multicore record should be read (e.g. vCPU count of the measuring box)")
	check := flag.String("check", "", "committed benchgen JSON to regression-check the measured speedup against (CI gate)")
	checkSlack := flag.Float64("check-slack", 0.10, "fraction the speedup may fall below the -check reference before failing")
	checkSlackExt := flag.Float64("check-slack-extended", 0.40, "slack for the extended replay ratio (a 10x-class ratio moves more across boxes and runs than the generation ratio; losing the closed forms would drop it to ~2.5x, far below any slack)")
	checkSlackMC := flag.Float64("check-slack-multicore", 0.35, "slack for the multicore ratio (scheduling noise dwarfs the single-run slack)")
	checkSlackStore := flag.Float64("check-slack-store", 0.50, "slack for the store warm/cold ratio (disk-speed-sensitive; losing the store entirely would pin it at ~1.0, below any slack)")
	flag.Parse()
	stopProfiles, err := cf.StartProfiles()
	if err != nil {
		log.Fatal(err)
	}
	defer stopProfiles()

	scale, ok := experiments.ScaleByName(*scaleName)
	if !ok {
		log.Fatalf("unknown scale %q", *scaleName)
	}
	cfg := scale.GenConfig(false)
	ctx := context.Background()

	time1 := func(naive bool) (time.Duration, *dataset.Dataset) {
		t0 := time.Now()
		ds, err := dataset.GenerateWith(ctx, cfg, dataset.ExploreOptions{Naive: naive})
		if err != nil {
			log.Fatal(err)
		}
		return time.Since(t0), ds
	}
	median := func(naive bool) (float64, *dataset.Dataset) {
		var ts []float64
		var ds *dataset.Dataset
		for i := 0; i < *runs; i++ {
			d, got := time1(naive)
			ts = append(ts, d.Seconds())
			ds = got
		}
		sort.Float64s(ts)
		return ts[len(ts)/2], ds
	}

	fmt.Printf("measuring %s scale, %d run(s) per path\n", scale.Name, *runs)
	naiveSec, naiveDS := median(true)
	fmt.Printf("naive:   %.2fs (median)\n", naiveSec)
	batchSec, batchDS := median(false)
	fmt.Printf("batched: %.2fs (median)\n", batchSec)

	// The counters need a run whose evaluator we hold: replay the grid
	// through the request runner on one slot (an extra untimed pass;
	// disable with -counters=false on slow boxes).
	var stats dataset.Stats
	if *counters {
		req, err := cfg.Request()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println("replaying the batched grid once more for work counters (untimed; -counters=false to skip)")
		stats = measureCounters(req)
	}

	r := result{
		Scale:         scale.Name,
		Programs:      len(cfg.Programs),
		Archs:         cfg.NumArchs,
		Opts:          cfg.NumOpts,
		Runs:          *runs,
		GoMaxProcs:    runtime.GOMAXPROCS(0),
		GoVersion:     runtime.Version(),
		NaiveSec:      naiveSec,
		BatchedSec:    batchSec,
		Speedup:       naiveSec / batchSec,
		PassRuns:      stats.PassRuns,
		PassRunsSaved: stats.PassRunsSaved,
		TraceReuses:   stats.TraceReuses,
		TraceGens:     stats.TraceGens,
		TraceEvents:   stats.TraceEvents,
		Identical:     bytes.Equal(encodeDS(naiveDS), encodeDS(batchDS)),
		TinySpeedup:   *tinySpeedup,
	}
	if *baseline > 0 {
		r.BaselineSec = *baseline
		r.SpeedupVsBase = *baseline / batchSec
		r.BaselineComment = *baselineNote
	}
	if !r.Identical {
		log.Fatal("naive and batched datasets differ - refusing to write benchmark results")
	}
	measureStore(&r, cfg, *runs, cf.Store, cf.StoreBudget, encodeDS(batchDS))
	if *extArchs > 0 {
		measureReplay(&r, *runs, *extArchs, *multicore)
		r.MCComment = *multicoreNote
	}
	if *check != "" {
		if err := checkRegression(r, *check, *checkSlack, *checkSlackExt, *checkSlackMC, *checkSlackStore); err != nil {
			log.Fatal(err)
		}
	}
	f, err := os.Create(*out)
	if err != nil {
		log.Fatal(err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(r); err != nil {
		log.Fatal(err)
	}
	f.Close()
	fmt.Printf("speedup %.2fx; pass runs %d (+%d saved), trace reuses %d -> %s\n",
		r.Speedup, r.PassRuns, r.PassRunsSaved, r.TraceReuses, *out)
}

// checkRegression gates the measured naive/batched speedup against a
// committed reference entry. The speedup is a same-machine, same-run
// ratio, so it ports across runner generations where wall-clock medians
// do not; it guards the batching machinery (prefix-memoised compiles,
// trace dedup, pooled buffers) - regressions confined to code both paths
// share equally need the absolute medians or a profile. The reference is
// the committed entry's own speedup when the scales match, or its
// recorded tiny_speedup when this run is at tiny scale (how CI uses it
// against the small-scale committed file).
//
// Two further gates apply when both the run and the reference carry the
// corresponding records. The extended-replay speedup gates regardless
// of -scale (its workload is fixed, not scaled) at its own wider slack:
// a 10x-class ratio swings more across microarchitectures than the
// generation ratio does. The multicore ratio gates at a wider slack
// still, and only when the run and the reference used the same
// -multicore value: a ratio measured at a different worker count is a
// different experiment.
// The store warm/cold ratio gates only when the scales match (the store
// overhead is per-entry, so the ratio does not port across grid sizes)
// at the widest slack of all: it mixes disk and compute speed. Its job
// is to catch the store silently not being hit at all - that pins the
// ratio at ~1.0, far below any committed reference minus slack.
func checkRegression(r result, path string, slack, slackExt, slackMC, slackStore float64) error {
	ref, err := loadResult(path)
	if err != nil {
		return fmt.Errorf("-check: %w", err)
	}
	want := 0.0
	switch {
	case ref.Scale == r.Scale:
		want = ref.Speedup
	case r.Scale == "tiny" && ref.TinySpeedup > 0:
		want = ref.TinySpeedup
	}
	if want <= 0 {
		return fmt.Errorf("-check: %s has no reference speedup for scale %q", path, r.Scale)
	}
	floor := want * (1 - slack)
	if r.Speedup < floor {
		return fmt.Errorf("-check: speedup %.3f is below %.3f (reference %.3f from %s, slack %.0f%%)",
			r.Speedup, floor, want, path, slack*100)
	}
	fmt.Printf("check ok: speedup %.3f >= %.3f (reference %.3f, slack %.0f%%)\n",
		r.Speedup, floor, want, slack*100)
	if r.ExtSpeedup > 0 && ref.ExtSpeedup > 0 {
		floor := ref.ExtSpeedup * (1 - slackExt)
		if r.ExtSpeedup < floor {
			return fmt.Errorf("-check: extended replay speedup %.3f is below %.3f (reference %.3f from %s, slack %.0f%%)",
				r.ExtSpeedup, floor, ref.ExtSpeedup, path, slackExt*100)
		}
		fmt.Printf("check ok: extended replay speedup %.3f >= %.3f (reference %.3f, slack %.0f%%)\n",
			r.ExtSpeedup, floor, ref.ExtSpeedup, slackExt*100)
	}
	if r.MCSpeedup > 0 && ref.MCSpeedup > 0 && r.MCProcs == ref.MCProcs {
		floor := ref.MCSpeedup * (1 - slackMC)
		if r.MCSpeedup < floor {
			return fmt.Errorf("-check: multicore (GOMAXPROCS=%d) speedup %.3f is below %.3f (reference %.3f from %s, slack %.0f%%)",
				r.MCProcs, r.MCSpeedup, floor, ref.MCSpeedup, path, slackMC*100)
		}
		fmt.Printf("check ok: multicore (GOMAXPROCS=%d) speedup %.3f >= %.3f (reference %.3f, slack %.0f%%)\n",
			r.MCProcs, r.MCSpeedup, floor, ref.MCSpeedup, slackMC*100)
	}
	if r.StoreWarmSpeedup > 0 && ref.StoreWarmSpeedup > 0 && ref.Scale == r.Scale {
		floor := ref.StoreWarmSpeedup * (1 - slackStore)
		if r.StoreWarmSpeedup < floor {
			return fmt.Errorf("-check: store warm speedup %.3f is below %.3f (reference %.3f from %s, slack %.0f%%)",
				r.StoreWarmSpeedup, floor, ref.StoreWarmSpeedup, path, slackStore*100)
		}
		fmt.Printf("check ok: store warm speedup %.3f >= %.3f (reference %.3f, slack %.0f%%)\n",
			r.StoreWarmSpeedup, floor, ref.StoreWarmSpeedup, slackStore*100)
	}
	return nil
}

// encodeDS is the byte-identity yardstick: the gob encoding datasets
// are compared and committed with.
func encodeDS(ds *dataset.Dataset) []byte {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(ds); err != nil {
		log.Fatal(err)
	}
	return buf.Bytes()
}

// measureStore fills the persistent result-store record: one batched
// generation against an empty store (cold - computes every replay and
// commits it), then runs generations against the populated store (warm
// - answers every replay from disk, median reported). Both paths must
// produce bytes identical to the storeless reference dataset, and the
// warm runs must actually hit the store - a warm run that recomputes
// is a broken store, not a slow one, and fails the tool. With dir
// empty the store lives in a temporary directory removed afterwards;
// a named -store dir persists (and is NOT cold on a second benchgen
// run there, so leave it empty for committed measurements).
func measureStore(r *result, cfg dataset.GenConfig, runs int, dir string, budget int64, ref []byte) {
	if dir == "" {
		tmp, err := os.MkdirTemp("", "benchgen-store-")
		if err != nil {
			log.Fatal(err)
		}
		defer os.RemoveAll(tmp)
		dir = tmp
	}
	gen := func() (float64, *dataset.Dataset, store.Stats) {
		rs, err := dataset.OpenResultStore(dir, budget)
		if err != nil {
			log.Fatal(err)
		}
		t0 := time.Now()
		ds, err := dataset.GenerateWith(context.Background(), cfg, dataset.ExploreOptions{Store: rs})
		el := time.Since(t0).Seconds()
		if err != nil {
			log.Fatal(err)
		}
		st := rs.Stats()
		rs.Close()
		return el, ds, st
	}
	coldSec, coldDS, coldStats := gen()
	if !bytes.Equal(encodeDS(coldDS), ref) {
		log.Fatal("store-backed (cold) dataset differs from the storeless run - refusing to write benchmark results")
	}
	fmt.Printf("store cold: %.2fs (%d entries, %d bytes committed)\n",
		coldSec, coldStats.Entries, coldStats.Bytes)
	var warm []float64
	for i := 0; i < runs; i++ {
		sec, ds, st := gen()
		if !bytes.Equal(encodeDS(ds), ref) {
			log.Fatal("store-backed (warm) dataset differs from the storeless run - refusing to write benchmark results")
		}
		if st.Hits == 0 || st.Misses > 0 {
			log.Fatalf("warm run %d recomputed instead of hitting the store (%d hits, %d misses) - refusing to write benchmark results",
				i, st.Hits, st.Misses)
		}
		warm = append(warm, sec)
	}
	sort.Float64s(warm)
	r.StoreColdSec = coldSec
	r.StoreWarmSec = warm[len(warm)/2]
	r.StoreWarmSpeedup = coldSec / r.StoreWarmSec
	r.StoreEntries = coldStats.Entries
	r.StoreBytes = coldStats.Bytes
	fmt.Printf("store warm: %.2fs (median); %.2fx over cold\n", r.StoreWarmSec, r.StoreWarmSpeedup)
}

// measureReplay fills the extended-space replay records: the fixed gs
// trace from the bench_test.go harness replayed over extArchs sampled
// Section 7 configurations - sequential cpu.Simulate loop, batched at
// one sweep worker, and (when multicore > 0) batched at GOMAXPROCS =
// multicore with the sweep fanned over as many workers. Every path's
// results are checked identical before any timing is recorded.
func measureReplay(r *result, runs, extArchs, multicore int) {
	m := prog.MustBuild("gs")
	o3 := opt.O3()
	p, err := core.Compile(m, &o3)
	if err != nil {
		log.Fatal(err)
	}
	tr := trace.Generate(p, trace.Config{Runs: 2, MaxInsns: 200000, Seed: 1})
	rng := rand.New(rand.NewSource(7))
	cfgs := uarch.Space{Extended: true}.SampleN(rng, extArchs)
	evc := float64(tr.Insns()) * float64(len(cfgs))

	seq := make([]cpu.Result, len(cfgs))
	median := func(f func()) float64 {
		var ts []float64
		for i := 0; i < runs; i++ {
			t0 := time.Now()
			f()
			ts = append(ts, time.Since(t0).Seconds())
		}
		sort.Float64s(ts)
		return ts[len(ts)/2]
	}
	fmt.Printf("replay engine: gs trace (%d events) x %d extended configs\n", tr.Insns(), len(cfgs))
	seqSec := median(func() {
		for i, c := range cfgs {
			seq[i] = cpu.Simulate(tr, c)
		}
	})
	var batch []cpu.Result
	batchSec := median(func() { batch = cpu.SimulateBatchWith(tr, cfgs, 1) })
	for i := range batch {
		if batch[i] != seq[i] {
			log.Fatalf("batched extended replay diverges from cpu.Simulate at config %d - refusing to write benchmark results", i)
		}
	}
	r.ExtArchs = len(cfgs)
	r.ExtTraceEvents = int64(tr.Insns())
	r.ExtSeqMevcs = evc / seqSec / 1e6
	r.ExtBatchMevcs = evc / batchSec / 1e6
	r.ExtSpeedup = seqSec / batchSec
	fmt.Printf("sequential: %.1f Mevc/s; batched (1 worker): %.1f Mevc/s; speedup %.2fx\n",
		r.ExtSeqMevcs, r.ExtBatchMevcs, r.ExtSpeedup)
	if multicore <= 0 {
		return
	}
	prev := runtime.GOMAXPROCS(multicore)
	var mc []cpu.Result
	mcSec := median(func() { mc = cpu.SimulateBatchWith(tr, cfgs, multicore) })
	runtime.GOMAXPROCS(prev)
	for i := range mc {
		if mc[i] != seq[i] {
			log.Fatalf("multicore extended replay diverges from cpu.Simulate at config %d - refusing to write benchmark results", i)
		}
	}
	r.MCProcs = multicore
	r.MCMevcs = evc / mcSec / 1e6
	r.MCSpeedup = batchSec / mcSec
	fmt.Printf("batched (GOMAXPROCS=%d, %d sweep workers): %.1f Mevc/s; %.2fx over 1 worker\n",
		multicore, multicore, r.MCMevcs, r.MCSpeedup)
}

// measureCounters runs the batched grid on a single-slot runner and
// returns the evaluator work counters (not timed).
func measureCounters(req dataset.ExploreRequest) dataset.Stats {
	run, ev := req.InstrumentedRunner()
	cells := req.Cells()
	for i := 0; i < cells; i++ {
		if _, err := run(0, i); err != nil {
			log.Fatal(err)
		}
	}
	return ev.Stats()
}
