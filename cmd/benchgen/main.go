// Command benchgen measures dataset generation throughput on this
// machine: it runs dataset.Generate through the naive per-cell path and
// through the prefix-memoised batched path at the same scale, checks the
// two datasets are byte-identical, and writes the timings plus the
// batched path's work counters as JSON (BENCH_generate.json by default).
// CI runs it at tiny scale as a regression smoke; the committed
// BENCH_generate.json is produced at -scale small, the compile+trace-
// dominated regime the batched engine targets.
//
// Usage:
//
//	benchgen [-scale small] [-runs 3] [-out BENCH_generate.json]
//	         [-check BENCH_generate.json [-check-slack 0.10]]
//	         [-tiny-speedup X] [-baseline-seconds S [-baseline-comment ...]]
//
// With -check, the measured naive/batched speedup is gated against a
// committed benchgen JSON (its own speedup at the same scale, or its
// tiny_speedup reference when running at tiny scale) and the process
// fails on a regression beyond the slack - the CI bench job's
// machine-portable regression gate.
package main

import (
	"bytes"
	"context"
	"encoding/gob"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"sort"
	"time"

	"portcc/internal/dataset"
	"portcc/internal/experiments"
)

// result is the JSON document benchgen emits.
type result struct {
	Scale      string  `json:"scale"`
	Programs   int     `json:"programs"`
	Archs      int     `json:"archs"`
	Opts       int     `json:"opts"`
	Runs       int     `json:"runs"`
	GoMaxProcs int     `json:"gomaxprocs"`
	GoVersion  string  `json:"go_version"`
	NaiveSec   float64 `json:"naive_seconds_median"`
	BatchedSec float64 `json:"batched_seconds_median"`
	Speedup    float64 `json:"speedup"`
	// BaselineSec optionally records an externally measured generation
	// time of a previous build (-baseline-seconds), for speedup claims
	// against a baseline that lacks the naive/batched toggle. Zero when
	// not provided.
	BaselineSec     float64 `json:"baseline_seconds_median,omitempty"`
	SpeedupVsBase   float64 `json:"speedup_vs_baseline,omitempty"`
	BaselineComment string  `json:"baseline_comment,omitempty"`
	// Work counters from one batched run, summed over all worker
	// evaluators: the pass applications executed vs the ones the prefix
	// trie avoided, the trace generations skipped for settings whose
	// binaries came out byte-identical, and the trace generations
	// actually performed with the dynamic instructions they emitted
	// (trace-generator throughput changes show up here without a
	// profiler).
	PassRuns      int64 `json:"pass_runs"`
	PassRunsSaved int64 `json:"pass_runs_saved"`
	TraceReuses   int64 `json:"trace_reuses"`
	TraceGens     int64 `json:"trace_gens"`
	TraceEvents   int64 `json:"trace_events"`
	Identical     bool  `json:"datasets_byte_identical"`
	// TinySpeedup optionally records this tool's speedup measured at
	// -scale tiny on the same machine as the main entry (-tiny-speedup),
	// so a committed small-scale file also carries the reference the CI
	// tiny-scale smoke gates against with -check.
	TinySpeedup float64 `json:"tiny_speedup,omitempty"`
}

// loadResult reads a previously written benchgen JSON document.
func loadResult(path string) (result, error) {
	var r result
	data, err := os.ReadFile(path)
	if err != nil {
		return r, err
	}
	err = json.Unmarshal(data, &r)
	return r, err
}

func main() {
	scaleName := flag.String("scale", "small", "scale to measure (tiny|small|medium|paper)")
	runs := flag.Int("runs", 3, "timed runs per path (median reported)")
	out := flag.String("out", "BENCH_generate.json", "output JSON path")
	baseline := flag.Float64("baseline-seconds", 0, "externally measured previous-build Generate seconds at this scale (recorded in the report)")
	baselineNote := flag.String("baseline-comment", "", "how the external baseline was measured")
	counters := flag.Bool("counters", true, "report batch work counters (costs one extra untimed single-worker pass over the grid)")
	tinySpeedup := flag.Float64("tiny-speedup", 0, "same-machine tiny-scale speedup to record alongside this entry (reference for -check)")
	check := flag.String("check", "", "committed benchgen JSON to regression-check the measured speedup against (CI gate)")
	checkSlack := flag.Float64("check-slack", 0.10, "fraction the speedup may fall below the -check reference before failing")
	flag.Parse()

	scale, ok := experiments.ScaleByName(*scaleName)
	if !ok {
		log.Fatalf("unknown scale %q", *scaleName)
	}
	cfg := scale.GenConfig(false)
	ctx := context.Background()

	encode := func(ds *dataset.Dataset) []byte {
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(ds); err != nil {
			log.Fatal(err)
		}
		return buf.Bytes()
	}
	time1 := func(naive bool) (time.Duration, *dataset.Dataset) {
		t0 := time.Now()
		ds, err := dataset.GenerateWith(ctx, cfg, dataset.ExploreOptions{Naive: naive})
		if err != nil {
			log.Fatal(err)
		}
		return time.Since(t0), ds
	}
	median := func(naive bool) (float64, *dataset.Dataset) {
		var ts []float64
		var ds *dataset.Dataset
		for i := 0; i < *runs; i++ {
			d, got := time1(naive)
			ts = append(ts, d.Seconds())
			ds = got
		}
		sort.Float64s(ts)
		return ts[len(ts)/2], ds
	}

	fmt.Printf("measuring %s scale, %d run(s) per path\n", scale.Name, *runs)
	naiveSec, naiveDS := median(true)
	fmt.Printf("naive:   %.2fs (median)\n", naiveSec)
	batchSec, batchDS := median(false)
	fmt.Printf("batched: %.2fs (median)\n", batchSec)

	// The counters need a run whose evaluator we hold: replay the grid
	// through the request runner on one slot (an extra untimed pass;
	// disable with -counters=false on slow boxes).
	var stats dataset.Stats
	if *counters {
		req, err := cfg.Request()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println("replaying the batched grid once more for work counters (untimed; -counters=false to skip)")
		stats = measureCounters(req)
	}

	r := result{
		Scale:         scale.Name,
		Programs:      len(cfg.Programs),
		Archs:         cfg.NumArchs,
		Opts:          cfg.NumOpts,
		Runs:          *runs,
		GoMaxProcs:    runtime.GOMAXPROCS(0),
		GoVersion:     runtime.Version(),
		NaiveSec:      naiveSec,
		BatchedSec:    batchSec,
		Speedup:       naiveSec / batchSec,
		PassRuns:      stats.PassRuns,
		PassRunsSaved: stats.PassRunsSaved,
		TraceReuses:   stats.TraceReuses,
		TraceGens:     stats.TraceGens,
		TraceEvents:   stats.TraceEvents,
		Identical:     bytes.Equal(encode(naiveDS), encode(batchDS)),
		TinySpeedup:   *tinySpeedup,
	}
	if *baseline > 0 {
		r.BaselineSec = *baseline
		r.SpeedupVsBase = *baseline / batchSec
		r.BaselineComment = *baselineNote
	}
	if !r.Identical {
		log.Fatal("naive and batched datasets differ - refusing to write benchmark results")
	}
	if *check != "" {
		if err := checkRegression(r, *check, *checkSlack); err != nil {
			log.Fatal(err)
		}
	}
	f, err := os.Create(*out)
	if err != nil {
		log.Fatal(err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(r); err != nil {
		log.Fatal(err)
	}
	f.Close()
	fmt.Printf("speedup %.2fx; pass runs %d (+%d saved), trace reuses %d -> %s\n",
		r.Speedup, r.PassRuns, r.PassRunsSaved, r.TraceReuses, *out)
}

// checkRegression gates the measured naive/batched speedup against a
// committed reference entry. The speedup is a same-machine, same-run
// ratio, so it ports across runner generations where wall-clock medians
// do not; it guards the batching machinery (prefix-memoised compiles,
// trace dedup, pooled buffers) - regressions confined to code both paths
// share equally need the absolute medians or a profile. The reference is
// the committed entry's own speedup when the scales match, or its
// recorded tiny_speedup when this run is at tiny scale (how CI uses it
// against the small-scale committed file).
func checkRegression(r result, path string, slack float64) error {
	ref, err := loadResult(path)
	if err != nil {
		return fmt.Errorf("-check: %w", err)
	}
	want := 0.0
	switch {
	case ref.Scale == r.Scale:
		want = ref.Speedup
	case r.Scale == "tiny" && ref.TinySpeedup > 0:
		want = ref.TinySpeedup
	}
	if want <= 0 {
		return fmt.Errorf("-check: %s has no reference speedup for scale %q", path, r.Scale)
	}
	floor := want * (1 - slack)
	if r.Speedup < floor {
		return fmt.Errorf("-check: speedup %.3f is below %.3f (reference %.3f from %s, slack %.0f%%)",
			r.Speedup, floor, want, path, slack*100)
	}
	fmt.Printf("check ok: speedup %.3f >= %.3f (reference %.3f, slack %.0f%%)\n",
		r.Speedup, floor, want, slack*100)
	return nil
}

// measureCounters runs the batched grid on a single-slot runner and
// returns the evaluator work counters (not timed).
func measureCounters(req dataset.ExploreRequest) dataset.Stats {
	run, ev := req.InstrumentedRunner()
	cells := req.Cells()
	for i := 0; i < cells; i++ {
		if _, err := run(0, i); err != nil {
			log.Fatal(err)
		}
	}
	return ev.Stats()
}
