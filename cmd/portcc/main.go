// Command portcc is the portable optimising compiler CLI (the paper's
// Figure 2 tool): it compiles a benchmark for a target microarchitecture,
// optionally letting the learned model choose the optimisation passes from
// one -O3 profiling run.
//
// Usage:
//
//	portcc -prog rijndael_e [-il1 4096] [-dl1 32768] [-btb 512]
//	       [-model model.gob | -dataset ds.gob]
//
// Without a model the program is compiled at -O3. With -model, a
// pre-trained model artifact (from cmd/trainer -model-out) is loaded -
// no training runs, and profiling reuses the artifact's embedded
// workload parameters. With -dataset, a dataset file (from cmd/trainer)
// is loaded and the model trained in-process. Either way the
// predicted-best passes are applied; the tool prints the chosen passes
// (including the canonical config key), code size, cycles and the
// Table 1 counters.
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"

	"portcc"
	"portcc/internal/cliutil"
	"portcc/internal/features"
)

func main() {
	progName := flag.String("prog", "rijndael_e", "benchmark program to compile")
	il1 := flag.Int("il1", 32<<10, "instruction cache size in bytes")
	il1Assoc := flag.Int("il1assoc", 32, "instruction cache associativity")
	dl1 := flag.Int("dl1", 32<<10, "data cache size in bytes")
	dl1Assoc := flag.Int("dl1assoc", 32, "data cache associativity")
	btb := flag.Int("btb", 512, "branch target buffer entries")
	var cf cliutil.Flags
	cf.RegisterModel("pre-trained model artifact (from trainer -model-out)")
	dsFile := flag.String("dataset", "", "dataset file to train the model from in-process")
	list := flag.Bool("list", false, "list available benchmark programs")
	ctx, stop := cliutil.Init("portcc")
	defer stop()

	if *list {
		for _, n := range portcc.Programs() {
			fmt.Println(n)
		}
		return
	}

	arch := portcc.XScale()
	arch.IL1Size = *il1
	arch.IL1Assoc = *il1Assoc
	arch.DL1Size = *dl1
	arch.DL1Assoc = *dl1Assoc
	arch.BTBSize = *btb
	if err := arch.Validate(); err != nil {
		log.Fatal(err)
	}

	if cf.Model != "" && *dsFile != "" {
		log.Fatal("use either -model (artifact) or -dataset (train in-process), not both")
	}

	var s *portcc.Session
	var model *portcc.Model
	how := "-O3 (no model)"
	switch {
	case cf.Model != "":
		// The artifact path trains nothing: the model is deserialised,
		// and the session profiles with the artifact's embedded workload
		// parameters so the measured features match the training
		// distribution.
		m, info, err := portcc.LoadModel(cf.Model)
		if errors.Is(err, portcc.ErrModelVersion) {
			log.Fatalf("%v\n(regenerate the artifact with this build's cmd/trainer -model-out)", err)
		}
		if err != nil {
			log.Fatal(err)
		}
		s = portcc.NewSession(portcc.WithEvalConfig(portcc.ModelEval(info)))
		model = m
		how = "model-predicted passes (pre-trained artifact, one -O3 profile run)"
	case *dsFile != "":
		ds, err := portcc.LoadDataset(*dsFile)
		if errors.Is(err, portcc.ErrDatasetVersion) {
			log.Fatalf("%v\n(regenerate the file with this build's cmd/trainer)", err)
		}
		if err != nil {
			log.Fatal(err)
		}
		s = portcc.NewSession(portcc.WithEvalConfig(ds.Cfg.Eval))
		model, err = portcc.TrainModel(ds)
		if err != nil {
			log.Fatal(err)
		}
		how = "model-predicted passes (trained in-process, one -O3 profile run)"
	default:
		s = portcc.NewSession()
	}

	cfg := portcc.O3()
	if model != nil {
		var err error
		cfg, err = s.OptimizeFor(ctx, *progName, arch, model)
		if err != nil {
			log.Fatal(err)
		}
	}

	bin, err := s.Compile(ctx, *progName, cfg)
	if err != nil {
		if errors.Is(err, portcc.ErrUnknownProgram) {
			log.Fatalf("%v (use -list for the benchmark suite)", err)
		}
		log.Fatal(err)
	}
	res, err := s.Run(ctx, *progName, cfg, arch)
	if err != nil {
		log.Fatal(err)
	}
	speedup, err := s.Speedup(ctx, *progName, cfg, arch)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("program:   %s\n", *progName)
	fmt.Printf("target:    %s\n", arch)
	fmt.Printf("passes:    %s\n", how)
	fmt.Printf("           %s\n", cfg.String())
	fmt.Printf("key:       %s\n", cfg.Key())
	fmt.Printf("code size: %d bytes (%d padding)\n", bin.TotalBytes, bin.PadBytes)
	fmt.Printf("cycles:    %d   IPC %.3f   speedup vs -O3: %.3fx\n", res.Cycles, res.IPC(), speedup)
	fmt.Printf("power:     %.1f mW (Cacti-style energy model)\n", res.PowerMW())
	fmt.Println("counters:")
	cs := features.Counters(&res)
	for i, n := range features.CounterNames() {
		fmt.Printf("  %-18s %.4f\n", n, cs[i])
	}
}
