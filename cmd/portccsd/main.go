// Command portccsd is the shared result-store service of a portccd
// fleet: it owns one content-addressed store directory and serves it
// over the wire protocol, so every shard's replay cache hits answer
// from one place and every shard's fresh work is committed once for
// all of them. Point workers (and coordinators) at it with
// -store-remote; their stores become local-then-remote tiers.
//
// Usage:
//
//	portccsd [-listen :7087] [-store dir] [-store-budget bytes]
//	         [-heartbeat 1s] [-inflight N] [-metrics host:port]
//
// The wire handshake carries the protocol and dataset schema versions,
// so shards built against a different schema are refused typed. Quiet
// connections carry heartbeats; clients that miss a few treat the
// service as dead and degrade to their local tiers, redialling with
// backoff - killing and restarting this process costs the fleet cache
// hits while it is down, never correctness or a stall.
//
// With -metrics the daemon serves a Prometheus text endpoint at
// /metrics (portccsd_* counters: connections, gets, hits, misses,
// puts, errors, plus the resident set), so fleet dashboards - and the
// CI smoke job - can prove the cache is actually shared.
//
// The first SIGTERM (or SIGINT) drains gracefully: stop accepting,
// answer in-flight requests, compact the journal, exit. A second
// signal hard-stops.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"portcc/internal/dataset"
	"portcc/internal/serve/metrics"
	"portcc/internal/store"
	"portcc/internal/wire"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("portccsd: ")
	listen := flag.String("listen", ":7087", "address to serve store clients on")
	storeDir := flag.String("store", "", "result-store directory to serve (required)")
	storeBudget := flag.Int64("store-budget", 0, "store size bound in bytes, LRU-evicted (0 = unbounded)")
	heartbeat := flag.Duration("heartbeat", time.Second, "liveness heartbeat period on quiet connections")
	inflight := flag.Int("inflight", 0, "max concurrently served requests per connection (0 = default)")
	metricsAddr := flag.String("metrics", "", "serve Prometheus text metrics on this address (empty = off)")
	flag.Parse()

	if *storeDir == "" {
		log.Fatal("-store is required: the directory this service owns and serves")
	}
	st, err := store.Open(store.Options{Dir: *storeDir, Budget: *storeBudget})
	if err != nil {
		log.Fatal(err)
	}
	defer st.Close()

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("serving result store %s on %s (protocol v%d, dataset format v%d, budget %d bytes)",
		*storeDir, ln.Addr(), wire.ProtoVersion, dataset.FormatVersion, *storeBudget)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	drain := make(chan struct{})
	sig := make(chan os.Signal, 2)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sig
		log.Print("draining: answering in-flight requests (signal again to hard-stop)")
		close(drain)
		<-sig
		log.Print("hard stop")
		cancel()
		time.AfterFunc(2*time.Second, func() { os.Exit(1) })
	}()

	sv := store.NewService(st, store.ServiceConfig{
		Format:    dataset.FormatVersion,
		Heartbeat: *heartbeat,
		Inflight:  *inflight,
		Drain:     drain,
		Logf:      log.Printf,
	})

	if *metricsAddr != "" {
		go serveMetrics(*metricsAddr, sv, st)
	}

	if err := sv.Serve(ctx, ln); err != nil {
		log.Fatal(err)
	}
	ss := sv.Stats()
	log.Printf("served %d conns: %d gets (%d hits, %d misses, %d degraded), %d puts (%d refused)",
		ss.Conns, ss.Gets, ss.Hits, ss.Misses, ss.GetErrors, ss.Puts, ss.PutErrors)
}

// serveMetrics exposes the service and store ledgers as Prometheus
// text at /metrics, reusing the dependency-free registry the
// prediction server's surface is built on.
func serveMetrics(addr string, sv *store.Service, st *store.Store) {
	reg := metrics.NewRegistry()
	svc := func(f func(store.ServiceStats) float64) func() float64 {
		return func() float64 { return f(sv.Stats()) }
	}
	stf := func(f func(store.Stats) float64) func() float64 {
		return func() float64 { return f(st.Stats()) }
	}
	reg.CounterFunc("portccsd_conns_total",
		"Client connections that passed the handshake.", svc(func(s store.ServiceStats) float64 { return float64(s.Conns) }))
	reg.CounterFunc("portccsd_gets_total",
		"StoreGet requests served.", svc(func(s store.ServiceStats) float64 { return float64(s.Gets) }))
	reg.CounterFunc("portccsd_hits_total",
		"StoreGet requests answered with an entry.", svc(func(s store.ServiceStats) float64 { return float64(s.Hits) }))
	reg.CounterFunc("portccsd_misses_total",
		"StoreGet requests answered with a miss.", svc(func(s store.ServiceStats) float64 { return float64(s.Misses) }))
	reg.CounterFunc("portccsd_get_errors_total",
		"StoreGet requests degraded by corrupt or unreadable entries.", svc(func(s store.ServiceStats) float64 { return float64(s.GetErrors) }))
	reg.CounterFunc("portccsd_puts_total",
		"StorePut requests committed.", svc(func(s store.ServiceStats) float64 { return float64(s.Puts) }))
	reg.CounterFunc("portccsd_put_errors_total",
		"StorePut requests the disk refused.", svc(func(s store.ServiceStats) float64 { return float64(s.PutErrors) }))
	reg.CounterFunc("portccsd_store_entries",
		"Entries resident in the served store.", stf(func(s store.Stats) float64 { return float64(s.Entries) }))
	reg.CounterFunc("portccsd_store_bytes",
		"Bytes resident in the served store.", stf(func(s store.Stats) float64 { return float64(s.Bytes) }))
	reg.CounterFunc("portccsd_store_evictions_total",
		"Budget-driven evictions from the served store.", stf(func(s store.Stats) float64 { return float64(s.Evictions) }))

	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		body, ct := reg.Expose()
		w.Header().Set("Content-Type", ct)
		fmt.Fprint(w, body)
	})
	if err := http.ListenAndServe(addr, mux); err != nil {
		log.Printf("-metrics: %v", err)
	}
}
