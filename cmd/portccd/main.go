// Command portccd is the exploration worker daemon of distributed
// dataset generation: it serves (program, setting, arch-batch) work
// cells shipped by a sharded coordinator (trainer -shards, expgen
// -shards, or any Session with WithShards), executing them on this
// machine's worker pool and streaming the results back over gob/TCP.
//
// Usage:
//
//	portccd [-listen :7077] [-workers N] [-sweep-workers N] [-heartbeat 1s]
//	        [-store dir] [-store-budget bytes] [-store-remote host:port]
//
// With -store the daemon keeps a persistent content-addressed result
// store shared by every run it serves: replays whose inputs match a
// stored entry are answered from disk, so a daemon restarted after a
// crash (kill -9 included) serves the resubmitted grid mostly from
// cache. With -store-remote the store is tiered behind the shared
// store service at that address (a running portccsd): lookups check
// the local directory first, then the service, and fresh replays are
// committed to both, so one shard's work answers the whole fleet's.
// Either flag works alone - -store-remote without -store leans on the
// fleet cache only. Result streams are bit-identical with or without
// any store tier and under every service failure (dead process, torn
// frames, slow replies all degrade to local misses, bounded in time);
// corrupt entries are quarantined and recomputed.
//
// The wire handshake carries the protocol and dataset schema versions,
// so a coordinator built against a different schema is refused with a
// typed error instead of gob decode noise. Quiet connections carry
// heartbeats; a coordinator that misses a few treats this shard as dead,
// requeues its cells elsewhere, and redials this address with backoff -
// a restarted daemon rejoins the same run and picks up fresh work.
//
// The daemon is built to survive its failure modes: a panic inside one
// work cell is recovered and shipped back as a typed cell error (the
// daemon and its other connections keep serving), transient accept
// failures such as fd exhaustion are retried with backoff instead of
// killing the process, and protocol-violating coordinators get their
// connection dropped without disturbing well-behaved ones.
//
// The first SIGTERM (or SIGINT) drains gracefully: the daemon stops
// accepting connections, finishes the assignments already in flight
// (their results still stream back), and exits; coordinators requeue
// everything else onto surviving shards. A second signal hard-stops:
// in-flight cells are abandoned and the exit is forced after a short
// grace (coordinators detect the drop and requeue).
package main

import (
	"context"
	"flag"
	"log"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"portcc/internal/cliutil"
	"portcc/internal/dataset"
	"portcc/internal/sched"
	"portcc/internal/wire"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("portccd: ")
	listen := flag.String("listen", ":7077", "address to serve coordinator connections on")
	workers := flag.Int("workers", 0, "cell worker pool size (0 = GOMAXPROCS)")
	sweepWorkers := flag.Int("sweep-workers", 0,
		"per-cell sweep parallelism of batched replays (0 = auto-tune against GOMAXPROCS)")
	heartbeat := flag.Duration("heartbeat", time.Second, "liveness heartbeat period on quiet connections")
	storeDir := flag.String("store", "", "persistent result-store directory shared across runs (empty = none)")
	storeBudget := flag.Int64("store-budget", 0, "result-store size bound in bytes, LRU-evicted (0 = unbounded)")
	storeRemote := flag.String("store-remote", "",
		"shared store-service address (host:port of portccsd); tiered behind -store when both are set")
	flag.Parse()

	var rstore *dataset.ResultStore
	var err error
	switch {
	case *storeRemote != "":
		rstore, err = dataset.OpenResultStoreRemote(*storeDir, *storeBudget, *storeRemote)
	case *storeDir != "":
		rstore, err = dataset.OpenResultStore(*storeDir, *storeBudget)
	}
	if err != nil {
		log.Fatal(err)
	}
	if rstore != nil {
		defer rstore.Close()
		defer func() { log.Print(cliutil.StoreStats(rstore)) }()
		switch {
		case *storeDir != "" && *storeRemote != "":
			log.Printf("result store at %s (budget %d bytes), tiered behind service %s", *storeDir, *storeBudget, *storeRemote)
		case *storeRemote != "":
			log.Printf("result store: fleet service %s (no local tier)", *storeRemote)
		default:
			log.Printf("result store at %s (budget %d bytes)", *storeDir, *storeBudget)
		}
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("serving exploration cells on %s (protocol v%d, dataset format v%d)",
		ln.Addr(), wire.ProtoVersion, dataset.FormatVersion)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	drain := make(chan struct{})
	sig := make(chan os.Signal, 2)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sig
		log.Print("draining: finishing in-flight assignments (signal again to hard-stop)")
		close(drain)
		<-sig
		log.Print("hard stop: abandoning in-flight work")
		cancel()
		// Cells already inside compile/simulate are not context-aware;
		// give the serve loop a moment to unwind, then force the exit
		// so "hard stop" means what it says.
		time.AfterFunc(2*time.Second, func() { os.Exit(1) })
	}()

	cfg := dataset.ServeConfigStore(*workers, *sweepWorkers, *heartbeat, rstore)
	cfg.Drain = drain
	cfg.Logf = log.Printf
	if err := sched.Serve(ctx, ln, cfg); err != nil {
		log.Fatal(err)
	}
}
