// Benchmarks for the dataset-generation paths: BenchmarkGenerateNaive is
// the per-cell compile+trace+replay baseline, BenchmarkGenerateBatched
// the prefix-memoised sweep engine (plan trie, deduplicated traces,
// pooled buffers). Run both at PORTCC_SCALE=small for the regime the
// batch engine targets; cmd/benchgen emits the same comparison as JSON
// (BENCH_generate.json) with the work counters included.
package portcc_test

import (
	"context"
	"testing"

	"portcc/internal/dataset"
)

func benchGenerate(b *testing.B, naive bool) {
	cfg := benchScale().GenConfig(false)
	sims := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ds, err := dataset.GenerateWith(context.Background(), cfg, dataset.ExploreOptions{Naive: naive})
		if err != nil {
			b.Fatal(err)
		}
		nP, nA, nO := ds.Dims()
		sims = nP * nA * nO
	}
	b.ReportMetric(float64(sims)*float64(b.N)/b.Elapsed().Seconds(), "sims/s")
}

// BenchmarkGenerateNaive measures the pre-batching baseline path.
func BenchmarkGenerateNaive(b *testing.B) { benchGenerate(b, true) }

// BenchmarkGenerateBatched measures the batched compile+trace path (the
// default); compare against BenchmarkGenerateNaive at the same scale.
func BenchmarkGenerateBatched(b *testing.B) { benchGenerate(b, false) }
