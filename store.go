package portcc

import "portcc/internal/dataset"

// ResultStore is a persistent, content-addressed, crash-safe on-disk
// cache of replay results. Attached to a session (WithResultStore),
// exploration and dataset generation answer replays whose inputs -
// binary fingerprint, workload parameters, architecture sample, replay
// model version - match a stored entry from disk, and commit fresh
// replays back.
//
// The contract is strict: results are bit-identical with or without a
// store. A generation run killed mid-flight (kill -9 included) resumes
// from the same directory with most cells served from disk and a
// byte-identical dataset. Corrupt entries (truncated, bit-flipped,
// version-mismatched, half-written) are detected by an end-to-end
// checksum, quarantined aside and recomputed; store I/O failures (full
// disk, dead device) degrade the run to cold-cache speed, never to
// wrong data or an abort.
type ResultStore = dataset.ResultStore

// OpenResultStore opens (creating if needed) a result store rooted at
// dir, bounded to budget bytes (0 = unbounded; least-recently-used
// entries are evicted beyond the budget). Orphan temp files from
// crashed writers are cleaned up and the index is rebuilt from the
// entry files, so any surviving directory state opens.
func OpenResultStore(dir string, budget int64) (*ResultStore, error) {
	return dataset.OpenResultStore(dir, budget)
}

// OpenResultStoreRemote opens a tiered result store: the local
// directory at dir (optional - empty means no local tier) backed by
// the shared store service at addr (a running portccsd), so a fleet of
// workers reuses one replay cache. Lookups check local first, then the
// service, writing remote hits back locally; commits go to both. Every
// service failure mode - dead process, torn frames, slow replies,
// version skew - degrades to a local miss bounded in time: datasets
// stay byte-identical whether the service is healthy, slow, or gone.
func OpenResultStoreRemote(dir string, budget int64, addr string) (*ResultStore, error) {
	return dataset.OpenResultStoreRemote(dir, budget, addr)
}

// WithResultStore attaches a persistent result store to the session:
// Explore, GenerateDataset and the single-run methods answer matching
// replays from it and commit fresh ones. Pass the same store to
// successive sessions (or reopen its directory across process
// restarts) to make exploration resumable. The caller owns Close.
func WithResultStore(rs *ResultStore) Option {
	return func(c *sessionConfig) { c.store = rs }
}
