package portcc

import (
	"context"
	"iter"

	"portcc/internal/dataset"
)

type (
	// ExploreRequest describes a design-space exploration grid: every
	// optimisation setting of every program compiled once and replayed
	// over the architecture sample, fanned out as (program, setting,
	// arch-batch) work cells. It is a plain gob-serialisable value - the
	// unit a coordinator will ship to worker shards.
	ExploreRequest = dataset.ExploreRequest
	// ExploreResult is one completed work cell, locating itself in the
	// request grid via ProgIndex/OptIndex/ArchStart. Serialisable like
	// the request.
	ExploreResult = dataset.ExploreResult
)

// Explore streams the request's grid through the session's worker pool,
// yielding cells as they complete:
//
//	for res, err := range s.Explore(ctx, req) {
//		if err != nil { ... }        // terminal: lowest-index failure, or cancellation
//		use(res)                     // partial results arrive as they finish
//	}
//
// Every grid cell is yielded exactly once. On failure, dispatch stops,
// in-flight cells still arrive, and the terminal yield carries the error
// of the lowest-indexed failing cell (deterministic under any worker
// schedule). On cancellation the pool drains promptly and the terminal
// error is a *PartialError wrapping ctx.Err(). Breaking out of the loop
// early cancels and drains the pool. If the request does not pin Eval,
// the session's workload scale is used.
//
// Explore is the engine GenerateDataset and cmd/expgen run on. With
// WithShards the cells ship to portccd worker daemons over gob/TCP
// (dead shards requeue onto survivors) and the stream is bit-identical
// to a local run; without it they fan over the in-process pool.
func (s *Session) Explore(ctx context.Context, req ExploreRequest) iter.Seq2[ExploreResult, error] {
	if req.Eval == (dataset.EvalConfig{}) {
		// Same derivation as NewExploreRequest/GenerateDataset, so a
		// hand-built request folds to the same cycle counts as the
		// session's own dataset path.
		req.Eval = s.genConfig(false).Eval
	}
	return dataset.Explore(ctx, req, s.exploreOptions())
}

// genConfig is the single place the session turns its scale and options
// into a dataset generation config - Explore, NewExploreRequest and
// GenerateDataset must all derive Eval identically.
func (s *Session) genConfig(extended bool) dataset.GenConfig {
	gc := s.scale().GenConfig(extended)
	gc.Eval.CacheBudget = s.cfg.cacheBudget
	return gc
}

func (s *Session) exploreOptions() dataset.ExploreOptions {
	o := dataset.ExploreOptions{
		Workers:      s.cfg.workers,
		SweepWorkers: s.cfg.sweepWorkers,
		Shards:       s.cfg.shards,
		Retry:        s.cfg.retry,
		Naive:        s.cfg.naive,
		Store:        s.cfg.store,
	}
	if fn := s.cfg.progress; fn != nil {
		o.Progress = func(done, total int) { fn(Progress{Done: done, Total: total}) }
	}
	return o
}

// NewExploreRequest builds the work grid GenerateDataset would run at the
// session's scale, for callers that want to stream (or shard) it
// themselves.
func (s *Session) NewExploreRequest(extended bool) (ExploreRequest, error) {
	return s.genConfig(extended).Request()
}

// GenerateDataset produces the Section 3.2 training dataset at the
// session's scale by folding the Explore stream: speedup of every sampled
// setting over -O3 plus the -O3 feature vectors, for every (program,
// architecture) pair.
func (s *Session) GenerateDataset(ctx context.Context, extended bool) (*Dataset, error) {
	return dataset.GenerateWith(ctx, s.genConfig(extended), s.exploreOptions())
}

// LoadDataset reads a dataset file written by Dataset.Save (cmd/trainer),
// returning ErrDatasetVersion if the file's schema version does not match
// this build.
func LoadDataset(path string) (*Dataset, error) {
	return dataset.Load(path)
}
