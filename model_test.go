package portcc_test

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"portcc"
	"portcc/internal/ml"
)

// tinyModelFixture generates the tiny-scale dataset and trains the
// model once per test binary; every artifact test reuses it.
var tinyModelFixture struct {
	ds    *portcc.Dataset
	model *portcc.Model
}

func tinyModel(t *testing.T) (*portcc.Dataset, *portcc.Model) {
	t.Helper()
	if tinyModelFixture.ds == nil {
		s := portcc.NewSession(portcc.WithScale(portcc.TinyScale()))
		ds, err := s.GenerateDataset(context.Background(), false)
		if err != nil {
			t.Fatal(err)
		}
		m, err := portcc.TrainModel(ds)
		if err != nil {
			t.Fatal(err)
		}
		tinyModelFixture.ds, tinyModelFixture.model = ds, m
	}
	return tinyModelFixture.ds, tinyModelFixture.model
}

// TestModelArtifactDeterministic pins the full train -> artifact ->
// load -> predict pipeline: re-saving produces byte-identical files
// (from the in-process model and from a loaded copy alike), and the
// loaded model predicts identically to the in-process one on every
// (program, arch) cell of the tiny grid - without a single ml.Train
// call on the artifact path.
func TestModelArtifactDeterministic(t *testing.T) {
	ds, model := tinyModel(t)
	dir := t.TempDir()
	p1, p2, p3 := filepath.Join(dir, "a.gob"), filepath.Join(dir, "b.gob"), filepath.Join(dir, "c.gob")

	info, err := portcc.SaveModel(p1, model, ds)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := portcc.SaveModel(p2, model, ds); err != nil {
		t.Fatal(err)
	}
	b1, _ := os.ReadFile(p1)
	b2, _ := os.ReadFile(p2)
	if !bytes.Equal(b1, b2) {
		t.Fatal("re-saving the same model produced different bytes")
	}

	fp, err := ds.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	if info.DatasetSHA256 != fp {
		t.Errorf("artifact dataset fingerprint %s != dataset fingerprint %s", info.DatasetSHA256, fp)
	}
	if got := portcc.ModelEval(info); got != ds.Cfg.Eval {
		t.Errorf("ModelEval(info) = %+v, want the dataset's %+v", got, ds.Cfg.Eval)
	}

	trainsBefore := ml.TrainCalls()
	loaded, info2, err := portcc.LoadModel(p1)
	if err != nil {
		t.Fatal(err)
	}
	if info2 != info {
		t.Errorf("loaded info %+v != saved info %+v", info2, info)
	}
	// A loaded model re-saves byte-identically too.
	if _, err := portcc.SaveModel(p3, loaded, ds); err != nil {
		t.Fatal(err)
	}
	b3, _ := os.ReadFile(p3)
	if !bytes.Equal(b1, b3) {
		t.Fatal("loaded model re-saved to different bytes")
	}

	nP, nA, _ := ds.Dims()
	for p := 0; p < nP; p++ {
		for a := 0; a < nA; a++ {
			want := model.Predict(ds.Features[p][a])
			got := loaded.Predict(ds.Features[p][a])
			if got != want {
				t.Fatalf("%s/arch%d: loaded model predicts %s, in-process %s",
					ds.Programs[p], a, got.Key(), want.Key())
			}
		}
	}
	if d := ml.TrainCalls() - trainsBefore; d != 0 {
		t.Fatalf("artifact load + predict ran %d ml.Train calls, want 0", d)
	}
}

// TestOptimizeForMatchesDatasetFeatures pins the deployment contract
// behind cmd/portcc -model and cmd/portccs: a session profiling with
// the artifact's embedded workload parameters measures the same
// feature vector the training run did, so OptimizeFor agrees with a
// direct prediction on the dataset's stored features.
func TestOptimizeForMatchesDatasetFeatures(t *testing.T) {
	ds, model := tinyModel(t)
	path := filepath.Join(t.TempDir(), "model.gob")
	if _, err := portcc.SaveModel(path, model, ds); err != nil {
		t.Fatal(err)
	}
	loaded, info, err := portcc.LoadModel(path)
	if err != nil {
		t.Fatal(err)
	}

	trainsBefore := ml.TrainCalls()
	s := portcc.NewSession(portcc.WithEvalConfig(portcc.ModelEval(info)))
	for _, p := range []int{0, len(ds.Programs) - 1} {
		for _, a := range []int{0, len(ds.Archs) - 1} {
			got, err := s.OptimizeFor(context.Background(), ds.Programs[p], ds.Archs[a], loaded)
			if err != nil {
				t.Fatal(err)
			}
			want := model.Predict(ds.Features[p][a])
			if got != want {
				t.Fatalf("%s/arch%d: OptimizeFor chose %s, dataset-feature prediction %s",
					ds.Programs[p], a, got.Key(), want.Key())
			}
		}
	}
	if d := ml.TrainCalls() - trainsBefore; d != 0 {
		t.Fatalf("the artifact deployment path ran %d ml.Train calls, want 0", d)
	}
}

func TestLoadModelRejectsDatasetFile(t *testing.T) {
	ds, _ := tinyModel(t)
	path := filepath.Join(t.TempDir(), "ds.gob")
	if err := ds.Save(path); err != nil {
		t.Fatal(err)
	}
	_, _, err := portcc.LoadModel(path)
	if !errors.Is(err, portcc.ErrModelVersion) {
		t.Fatalf("loading a dataset file as a model: err = %v, want ErrModelVersion", err)
	}
}
