package portcc_test

import (
	"testing"

	"portcc"
)

func TestPublicAPIEndToEnd(t *testing.T) {
	c := portcc.New()
	arch := portcc.XScale()

	bin, err := c.Compile("crc", portcc.O3())
	if err != nil {
		t.Fatal(err)
	}
	if bin.TotalBytes == 0 {
		t.Fatal("empty binary")
	}
	res, err := c.Run("crc", portcc.O3(), arch)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles == 0 || res.IPC() <= 0 || res.IPC() > 1 {
		t.Fatalf("implausible result: %d cycles, IPC %.2f", res.Cycles, res.IPC())
	}
	s, err := c.Speedup("crc", portcc.O3(), arch)
	if err != nil {
		t.Fatal(err)
	}
	if s != 1 {
		t.Errorf("O3 vs O3 speedup %f, want exactly 1", s)
	}
}

func TestModelDeployment(t *testing.T) {
	// The Figure 2 path: train, profile once at -O3, predict, compile.
	scale := portcc.Scale{Name: "t", Programs: []string{"crc", "bitcnts", "search", "qsort"},
		NumArchs: 3, NumOpts: 12, TargetInsns: 5000, Seed: 9}
	ds, err := scale.Dataset(false)
	if err != nil {
		t.Fatal(err)
	}
	model, err := portcc.TrainModel(ds)
	if err != nil {
		t.Fatal(err)
	}
	c := portcc.New()
	arch := portcc.XScale()
	arch.IL1Size = 8 << 10
	arch.IL1Assoc = 4
	cfg, err := c.OptimizeFor("bitcnts", arch, model)
	if err != nil {
		t.Fatal(err)
	}
	s, err := c.Speedup("bitcnts", cfg, arch)
	if err != nil {
		t.Fatal(err)
	}
	if s <= 0 {
		t.Fatalf("deployment speedup %f", s)
	}
	t.Logf("model-predicted passes give %.3fx on bitcnts", s)
}

func TestProgramsList(t *testing.T) {
	names := portcc.Programs()
	if len(names) != 35 {
		t.Fatalf("%d programs, want 35", len(names))
	}
	if names[0] != "qsort" || names[34] != "search" {
		t.Error("Figure 4 ordering expected")
	}
}
